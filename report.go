// report.go defines the serializable artifacts of the unified API: the
// Scenario file format (platform + spec) that lets cmd/topogen,
// cmd/paperbench and cmd/sscollect compose through files, and the Report
// summary of a solved collective.
package steadystate

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rat"
)

// Scenario bundles a platform with the spec of a collective to solve on
// it — the on-disk unit of work of the cmd pipeline. cmd/topogen writes
// scenarios, cmd/sscollect and cmd/paperbench consume them.
type Scenario struct {
	Platform *Platform
	Spec     Spec
}

type jsonScenario struct {
	Platform json.RawMessage `json:"platform"`
	Spec     json.RawMessage `json:"spec,omitempty"`
}

// MarshalJSON serializes the scenario; the platform keeps its exact
// rational costs and speeds. The output is compact — top-level and nested
// serialization agree byte for byte, and writers indent at the edge.
func (sc *Scenario) MarshalJSON() ([]byte, error) {
	if sc.Platform == nil {
		return nil, fmt.Errorf("steadystate: scenario has no platform")
	}
	pdata, err := json.Marshal(sc.Platform)
	if err != nil {
		return nil, err
	}
	js := jsonScenario{Platform: pdata}
	// A platform-only scenario (no spec yet) is valid on both sides of
	// the round trip.
	if sc.Spec.Kind != "" {
		js.Spec, err = json.Marshal(sc.Spec)
		if err != nil {
			return nil, err
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON deserializes a scenario produced by MarshalJSON.
func (sc *Scenario) UnmarshalJSON(data []byte) error {
	var js jsonScenario
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	if len(js.Platform) == 0 {
		return fmt.Errorf("steadystate: scenario has no platform")
	}
	sc.Platform = NewPlatform()
	if err := json.Unmarshal(js.Platform, sc.Platform); err != nil {
		return err
	}
	sc.Spec = Spec{}
	if len(js.Spec) > 0 {
		if err := json.Unmarshal(js.Spec, &sc.Spec); err != nil {
			return err
		}
	}
	return nil
}

// Solve solves the scenario's spec on its platform.
func (sc *Scenario) Solve(ctx context.Context, opts ...SolveOption) (Solution, error) {
	return Solve(ctx, sc.Platform, sc.Spec, opts...)
}

// Trace, Span and Timing alias the internal observability types so
// callers can traverse Report.Trace — the span tree of a WithTrace solve
// — without importing internal packages. See WithTrace for the
// determinism contract.
type (
	Trace  = obs.Trace
	Span   = obs.Span
	Timing = obs.Timing
)

// Report is the serializable summary of a solved collective: exact
// rationals travel as strings ("2/9"), periods as decimal strings, so
// reports survive JSON without losing the bit-exactness the framework
// guarantees.
type Report struct {
	Kind Kind `json:"kind"`
	// Throughput is TP as an exact rational string.
	Throughput string `json:"throughput"`
	// ThroughputFloat approximates TP for human consumption; may round.
	ThroughputFloat float64 `json:"throughput_float"`
	// Period is the integer schedule period.
	Period string `json:"period"`
	// LP records the size, sparsity and solve cost of the solved linear
	// program: LPNonZeros counts the constraint matrix's nonzero
	// coefficients and LPDensity is that count over the Vars×Constraints
	// area (what the sparse tableau exploits); LPPivots is the total
	// simplex pivot count, LPPhase1Pivots the share spent finding a
	// feasible basis (phase 1).
	LPVars         int     `json:"lp_vars"`
	LPConstraints  int     `json:"lp_constraints"`
	LPNonZeros     int     `json:"lp_nonzeros"`
	LPDensity      float64 `json:"lp_density,omitempty"`
	LPPivots       int     `json:"lp_pivots"`
	LPPhase1Pivots int     `json:"lp_phase1_pivots,omitempty"`
	// SolveMS is the wall-clock duration of the Solve call in milliseconds
	// (zero for member reports, which are solved jointly with their
	// composite). It is measurement, not arithmetic: two identical solves
	// report identical throughputs but may report different SolveMS.
	SolveMS float64 `json:"solve_ms,omitempty"`
	// WarmStart is true when the solve reused a cached basis from a
	// Solver session's basis cache (see Solver.UseBasisCache):
	// WarmPivotsSaved estimates the phase-1 pivots the reuse avoided
	// (the cached basis's original phase-1 cost minus the pivots this
	// solve actually spent restoring it). When a cached basis was offered
	// but rejected, WarmReject names the reason (fingerprint_mismatch,
	// shape_mismatch, singular_basis, infeasible_basis). Warm starts
	// never change the reported rationals — only the pivot counts and
	// SolveMS.
	WarmStart       bool   `json:"warm_start,omitempty"`
	WarmReject      string `json:"warm_reject,omitempty"`
	WarmPivotsSaved int    `json:"lp_warm_pivots_saved,omitempty"`
	// Trees counts the extracted reduction trees (reduce/gather only).
	Trees int `json:"trees,omitempty"`
	// FixedPeriod/FixedThroughput/FixedLoss describe the Section 4.6
	// approximation when the solve used WithFixedPeriod.
	FixedPeriod     string `json:"fixed_period,omitempty"`
	FixedThroughput string `json:"fixed_throughput,omitempty"`
	FixedLoss       string `json:"fixed_loss,omitempty"`
	// Members summarizes each member of a composite-style solve
	// (composite, reducescatter, allreduce): one report per member
	// collective, solved jointly — an allreduce reports its N reduce
	// members (the reduce-scatter phase) followed by the allgather
	// gossip member.
	Members []*Report `json:"members,omitempty"`
	// Weight is the member's weight within its composite (member reports
	// only), as an exact rational string.
	Weight string `json:"weight,omitempty"`
	// Trace is the span-structured solve trace (only when the solve used
	// WithTrace). Its structure and attributes are deterministic; the
	// wall-clock measurements live in each span's timing block, strippable
	// with Trace.WithoutTiming for byte-exact comparison.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// newReport fills the fields every kind shares.
func newReport(kind Kind, tp Rat, period fmt.Stringer, stats core.FlowStats) *Report {
	return &Report{
		Kind:            kind,
		Throughput:      tp.RatString(),
		ThroughputFloat: rat.Float(tp),
		Period:          period.String(),
		LPVars:          stats.Vars,
		LPConstraints:   stats.Constraints,
		LPNonZeros:      stats.NonZeros,
		LPDensity:       stats.Density,
		LPPivots:        stats.Pivots,
		LPPhase1Pivots:  stats.Phase1Pivots,
	}
}

// ---------------------------------------------------------------------------
// Sweep reports

// SweepResult is one solved scenario of a sweep, reduced to its
// deterministic summary: exact throughput and LP cost counters, no
// wall-clock measurements. Two sweeps over the same scenarios produce
// identical SweepResults regardless of -jobs, sharding or machine load.
type SweepResult struct {
	// Name identifies the scenario within the sweep (the file base name
	// for file sweeps).
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Throughput is TP as an exact rational string; Period the integer
	// schedule period.
	Throughput     string  `json:"throughput"`
	Period         string  `json:"period"`
	LPVars         int     `json:"lp_vars"`
	LPConstraints  int     `json:"lp_constraints"`
	LPNonZeros     int     `json:"lp_nonzeros"`
	LPDensity      float64 `json:"lp_density,omitempty"`
	LPPivots       int     `json:"lp_pivots"`
	LPPhase1Pivots int     `json:"lp_phase1_pivots,omitempty"`
	// Warm-start outcome of the solve (see Report.WarmStart). Only set by
	// warm sweeps; cold sweeps leave all three zero so their results stay
	// byte-identical to pre-warm-start sweeps.
	WarmStart       bool   `json:"warm_start,omitempty"`
	WarmReject      string `json:"warm_reject,omitempty"`
	WarmPivotsSaved int    `json:"lp_warm_pivots_saved,omitempty"`
}

// SweepFailure records one scenario that could not be solved — a file
// that failed to parse, a spec the platform rejects, a solve that timed
// out — with the error that explains it. Failures never abort a sweep;
// they accumulate here.
type SweepFailure struct {
	Name  string `json:"name"`
	Error string `json:"error"`
}

// SweepKindStats aggregates the solved scenarios of one collective kind:
// the throughput range and exact mean, and the summed LP cost counters.
type SweepKindStats struct {
	Kind  Kind `json:"kind"`
	Count int  `json:"count"`
	// Min/Max/MeanThroughput are exact rational strings; the mean is
	// Σ TP / Count computed in exact arithmetic.
	MinThroughput  string `json:"min_throughput"`
	MaxThroughput  string `json:"max_throughput"`
	MeanThroughput string `json:"mean_throughput"`
	// LP cost totals across the kind's solves. MeanLPDensity is the
	// arithmetic mean of the per-scenario densities (averaged over the
	// name-sorted results, so it is deterministic).
	TotalLPVars        int     `json:"total_lp_vars"`
	TotalLPConstraints int     `json:"total_lp_constraints"`
	TotalLPNonZeros    int     `json:"total_lp_nonzeros"`
	MeanLPDensity      float64 `json:"mean_lp_density,omitempty"`
	TotalLPPivots      int     `json:"total_lp_pivots"`
	MaxLPPivots        int     `json:"max_lp_pivots"`
	// Warm-start totals across the kind's solves (zero in cold sweeps).
	WarmStarts           int `json:"warm_starts,omitempty"`
	WarmRejects          int `json:"warm_rejects,omitempty"`
	TotalWarmPivotsSaved int `json:"total_warm_pivots_saved,omitempty"`
}

// SweepTiming carries the sweep's wall-clock measurements, split from the
// deterministic body of a SweepReport so golden tests and cross-run diffs
// can compare everything else byte for byte.
type SweepTiming struct {
	// WallMS is the end-to-end sweep duration; TotalSolveMS the sum of
	// per-scenario solve times (> WallMS when -jobs exploits parallelism).
	WallMS       float64 `json:"wall_ms"`
	TotalSolveMS float64 `json:"total_solve_ms"`
	// Solve-time percentiles over the solved scenarios, in milliseconds
	// (nearest-rank on the sorted durations).
	SolveP50MS float64 `json:"solve_p50_ms"`
	SolveP90MS float64 `json:"solve_p90_ms"`
	SolveP99MS float64 `json:"solve_p99_ms"`
	SolveMaxMS float64 `json:"solve_max_ms"`
}

// SweepReport is the aggregated outcome of a scenario sweep. Everything
// except Timing is deterministic with stable ordering: Results and
// Failures sort by name, Kinds by kind, so reports from -jobs 1 and
// -jobs 8 runs are identical and complementary -shard runs union cleanly.
type SweepReport struct {
	// Scenarios = Solved + Failed is the number of scenarios this run
	// attempted (after shard selection).
	Scenarios int `json:"scenarios"`
	Solved    int `json:"solved"`
	Failed    int `json:"failed"`
	// Shard is "i/n" when the sweep ran shard i of n, empty otherwise.
	Shard string `json:"shard,omitempty"`
	// Platforms counts the distinct platform topologies (by content hash)
	// among the attempted scenarios — each backed one shared Solver
	// session.
	Platforms int               `json:"platforms"`
	Kinds     []*SweepKindStats `json:"kinds,omitempty"`
	Results   []*SweepResult    `json:"results,omitempty"`
	Failures  []*SweepFailure   `json:"failures,omitempty"`
	Timing    *SweepTiming      `json:"timing,omitempty"`
}

// SweepResultOf reduces a solved scenario's Report to its deterministic
// sweep summary.
func SweepResultOf(name string, rep *Report) *SweepResult {
	return &SweepResult{
		Name:            name,
		Kind:            rep.Kind,
		Throughput:      rep.Throughput,
		Period:          rep.Period,
		LPVars:          rep.LPVars,
		LPConstraints:   rep.LPConstraints,
		LPNonZeros:      rep.LPNonZeros,
		LPDensity:       rep.LPDensity,
		LPPivots:        rep.LPPivots,
		LPPhase1Pivots:  rep.LPPhase1Pivots,
		WarmStart:       rep.WarmStart,
		WarmReject:      rep.WarmReject,
		WarmPivotsSaved: rep.WarmPivotsSaved,
	}
}

// Aggregate sorts the report's results, failures and kind tables into
// their canonical order and recomputes the counters and per-kind
// aggregates from Results and Failures. Call after appending results;
// the receiver is returned for chaining.
func (r *SweepReport) Aggregate() (*SweepReport, error) {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
	sort.Slice(r.Failures, func(i, j int) bool { return r.Failures[i].Name < r.Failures[j].Name })
	r.Solved = len(r.Results)
	r.Failed = len(r.Failures)
	r.Scenarios = r.Solved + r.Failed

	type acc struct {
		count            int
		min, max, sum    Rat
		vars, cons       int
		nonzeros         int
		density          float64
		pivots, maxPivot int
		warmStarts       int
		warmRejects      int
		warmSaved        int
	}
	byKind := make(map[Kind]*acc)
	for _, res := range r.Results {
		tp, err := rat.Parse(res.Throughput)
		if err != nil {
			return nil, fmt.Errorf("steadystate: sweep result %s has unparseable throughput %q: %w",
				res.Name, res.Throughput, err)
		}
		a := byKind[res.Kind]
		if a == nil {
			a = &acc{min: tp, max: tp, sum: rat.Zero()}
			byKind[res.Kind] = a
		}
		a.count++
		a.sum = rat.Add(a.sum, tp)
		if tp.Cmp(a.min) < 0 {
			a.min = tp
		}
		if tp.Cmp(a.max) > 0 {
			a.max = tp
		}
		a.vars += res.LPVars
		a.cons += res.LPConstraints
		a.nonzeros += res.LPNonZeros
		a.density += res.LPDensity
		a.pivots += res.LPPivots
		if res.LPPivots > a.maxPivot {
			a.maxPivot = res.LPPivots
		}
		if res.WarmStart {
			a.warmStarts++
		}
		if res.WarmReject != "" {
			a.warmRejects++
		}
		a.warmSaved += res.WarmPivotsSaved
	}
	r.Kinds = r.Kinds[:0]
	for kind, a := range byKind {
		mean := rat.Div(a.sum, rat.Int(int64(a.count)))
		r.Kinds = append(r.Kinds, &SweepKindStats{
			Kind:                 kind,
			Count:                a.count,
			MinThroughput:        a.min.RatString(),
			MaxThroughput:        a.max.RatString(),
			MeanThroughput:       mean.RatString(),
			TotalLPVars:          a.vars,
			TotalLPConstraints:   a.cons,
			TotalLPNonZeros:      a.nonzeros,
			MeanLPDensity:        a.density / float64(a.count),
			TotalLPPivots:        a.pivots,
			MaxLPPivots:          a.maxPivot,
			WarmStarts:           a.warmStarts,
			WarmRejects:          a.warmRejects,
			TotalWarmPivotsSaved: a.warmSaved,
		})
	}
	sort.Slice(r.Kinds, func(i, j int) bool { return r.Kinds[i].Kind < r.Kinds[j].Kind })
	return r, nil
}
