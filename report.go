// report.go defines the serializable artifacts of the unified API: the
// Scenario file format (platform + spec) that lets cmd/topogen,
// cmd/paperbench and cmd/sscollect compose through files, and the Report
// summary of a solved collective.
package steadystate

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/rat"
)

// Scenario bundles a platform with the spec of a collective to solve on
// it — the on-disk unit of work of the cmd pipeline. cmd/topogen writes
// scenarios, cmd/sscollect and cmd/paperbench consume them.
type Scenario struct {
	Platform *Platform
	Spec     Spec
}

type jsonScenario struct {
	Platform json.RawMessage `json:"platform"`
	Spec     json.RawMessage `json:"spec,omitempty"`
}

// MarshalJSON serializes the scenario; the platform keeps its exact
// rational costs and speeds. The output is compact — top-level and nested
// serialization agree byte for byte, and writers indent at the edge.
func (sc *Scenario) MarshalJSON() ([]byte, error) {
	if sc.Platform == nil {
		return nil, fmt.Errorf("steadystate: scenario has no platform")
	}
	pdata, err := json.Marshal(sc.Platform)
	if err != nil {
		return nil, err
	}
	js := jsonScenario{Platform: pdata}
	// A platform-only scenario (no spec yet) is valid on both sides of
	// the round trip.
	if sc.Spec.Kind != "" {
		js.Spec, err = json.Marshal(sc.Spec)
		if err != nil {
			return nil, err
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON deserializes a scenario produced by MarshalJSON.
func (sc *Scenario) UnmarshalJSON(data []byte) error {
	var js jsonScenario
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	if len(js.Platform) == 0 {
		return fmt.Errorf("steadystate: scenario has no platform")
	}
	sc.Platform = NewPlatform()
	if err := json.Unmarshal(js.Platform, sc.Platform); err != nil {
		return err
	}
	sc.Spec = Spec{}
	if len(js.Spec) > 0 {
		if err := json.Unmarshal(js.Spec, &sc.Spec); err != nil {
			return err
		}
	}
	return nil
}

// Solve solves the scenario's spec on its platform.
func (sc *Scenario) Solve(ctx context.Context, opts ...SolveOption) (Solution, error) {
	return Solve(ctx, sc.Platform, sc.Spec, opts...)
}

// Report is the serializable summary of a solved collective: exact
// rationals travel as strings ("2/9"), periods as decimal strings, so
// reports survive JSON without losing the bit-exactness the framework
// guarantees.
type Report struct {
	Kind Kind `json:"kind"`
	// Throughput is TP as an exact rational string.
	Throughput string `json:"throughput"`
	// ThroughputFloat approximates TP for human consumption; may round.
	ThroughputFloat float64 `json:"throughput_float"`
	// Period is the integer schedule period.
	Period string `json:"period"`
	// LP records the size of the solved linear program.
	LPVars        int `json:"lp_vars"`
	LPConstraints int `json:"lp_constraints"`
	LPPivots      int `json:"lp_pivots"`
	// Trees counts the extracted reduction trees (reduce/gather only).
	Trees int `json:"trees,omitempty"`
	// FixedPeriod/FixedThroughput/FixedLoss describe the Section 4.6
	// approximation when the solve used WithFixedPeriod.
	FixedPeriod     string `json:"fixed_period,omitempty"`
	FixedThroughput string `json:"fixed_throughput,omitempty"`
	FixedLoss       string `json:"fixed_loss,omitempty"`
	// Members summarizes each member of a composite or reduce-scatter
	// solve: one report per member collective, solved jointly.
	Members []*Report `json:"members,omitempty"`
	// Weight is the member's weight within its composite (member reports
	// only), as an exact rational string.
	Weight string `json:"weight,omitempty"`
}

// newReport fills the fields every kind shares.
func newReport(kind Kind, tp Rat, period fmt.Stringer, stats core.FlowStats) *Report {
	return &Report{
		Kind:            kind,
		Throughput:      tp.RatString(),
		ThroughputFloat: rat.Float(tp),
		Period:          period.String(),
		LPVars:          stats.Vars,
		LPConstraints:   stats.Constraints,
		LPPivots:        stats.Pivots,
	}
}
