// Tests for the allreduce and broadcast kinds through the unified API:
// golden throughputs on the paper's Figure 6 triangle and the seed-42
// Tiers platform, degenerate equivalences (single-target broadcast ≡
// scatter-to-one, pinned 2-rank allreduce), composite membership of
// broadcasts, serialization round trips, and error paths.
package steadystate_test

import (
	"context"
	"encoding/json"
	"math/big"
	"reflect"
	"testing"

	steadystate "repro"
)

// TestBroadcastGoldenFig6: golden values on the Figure 6 triangle —
// replicating one commodity to both peers relays each message once
// through the cheap P0→P1→P2 chain, sustaining TP = 1/2 where the
// scatter of distinct messages manages only 1/4.
func TestBroadcastGoldenFig6(t *testing.T) {
	p, order, _ := steadystate.PaperFig6()
	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.BroadcastSpec(order[0], order[1], order[2]))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "1/2", "fig6 broadcast TP")
	if got := sol.Period().String(); got != "2" {
		t.Errorf("period = %s, want 2", got)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	scatter, err := steadystate.Solve(context.Background(), p,
		steadystate.ScatterSpec(order[0], order[1], order[2]))
	if err != nil {
		t.Fatalf("scatter Solve: %v", err)
	}
	if sol.Throughput().Cmp(scatter.Throughput()) <= 0 {
		t.Errorf("broadcast TP %s should beat the distinct-message scatter TP %s",
			sol.Throughput().RatString(), scatter.Throughput().RatString())
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	rep, err := sol.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if rep.Kind != steadystate.KindBroadcast || rep.Throughput != "1/2" {
		t.Errorf("report = %+v, want broadcast at 1/2", rep)
	}
}

// TestBroadcastGoldenTiers: golden values for a broadcast from the first
// participant of the seed-42 Tiers platform to every other participant.
func TestBroadcastGoldenTiers(t *testing.T) {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(42))
	parts := p.Participants()
	sol, err := steadystate.Solve(context.Background(), p,
		steadystate.BroadcastSpec(parts[0], parts[1:]...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "5", "tiers broadcast TP")
	if got := sol.Period().String(); got != "1" {
		t.Errorf("period = %s, want 1", got)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestBroadcastSingleTargetEqualsScatter: with one target there is
// nothing to replicate, so the broadcast degenerates to a scatter-to-one
// and the optimal throughputs coincide (pinned on Fig 2 and Fig 6).
func TestBroadcastSingleTargetEqualsScatter(t *testing.T) {
	ctx := context.Background()
	p2, src, targets := steadystate.PaperFig2()
	p6, order, _ := steadystate.PaperFig6()
	cases := []struct {
		name   string
		p      *steadystate.Platform
		src    steadystate.NodeID
		target steadystate.NodeID
	}{
		{"fig2", p2, src, targets[0]},
		{"fig6", p6, order[0], order[2]},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b, err := steadystate.Solve(ctx, c.p, steadystate.BroadcastSpec(c.src, c.target))
			if err != nil {
				t.Fatalf("broadcast Solve: %v", err)
			}
			s, err := steadystate.Solve(ctx, c.p, steadystate.ScatterSpec(c.src, c.target))
			if err != nil {
				t.Fatalf("scatter Solve: %v", err)
			}
			if b.Throughput().Cmp(s.Throughput()) != 0 {
				t.Errorf("broadcast TP = %s, want scatter-to-one TP = %s",
					b.Throughput().RatString(), s.Throughput().RatString())
			}
			if err := b.Verify(); err != nil {
				t.Errorf("Verify: %v", err)
			}
		})
	}
}

// TestAllreduceGoldenFig6: golden values on the Figure 6 triangle — the
// three concurrent reduces plus the allgather saturate the triangle at a
// common rate of 1/8 (the reduce-scatter phase alone achieves 1/4).
func TestAllreduceGoldenFig6(t *testing.T) {
	p, order, _ := steadystate.PaperFig6()
	sol, err := steadystate.Solve(context.Background(), p, steadystate.AllreduceSpec(order...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "1/8", "fig6 allreduce TP")
	if got := sol.Period().String(); got != "8" {
		t.Errorf("period = %s, want 8", got)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	members := sol.(steadystate.Concurrent).Members()
	if len(members) != len(order)+1 {
		t.Fatalf("got %d members, want %d reduces + 1 allgather", len(members), len(order))
	}
	for i, m := range members[:len(order)] {
		if m.Kind() != steadystate.KindReduce {
			t.Errorf("member %d kind = %q, want reduce", i, m.Kind())
		}
		if m.Spec().Target != order[i] {
			t.Errorf("member %d targets node %d, want %d (segment i → order[i])",
				i, m.Spec().Target, order[i])
		}
		if err := m.Verify(); err != nil {
			t.Errorf("member %d Verify: %v", i, err)
		}
	}
	if gk := members[len(order)].Kind(); gk != steadystate.KindGossip {
		t.Errorf("last member kind = %q, want the allgather gossip", gk)
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
	rep, err := sol.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if rep.Kind != steadystate.KindAllreduce || len(rep.Members) != 4 {
		t.Errorf("report kind %q with %d members, want allreduce with 4", rep.Kind, len(rep.Members))
	}
}

// TestAllreduceGoldenTiers: golden values for an allreduce over the first
// three participants of the seed-42 Tiers platform. The same order's
// reduce-scatter alone runs at 695/283; paying for the allgather phase
// drops the common rate to 695/571 on the identical topology.
func TestAllreduceGoldenTiers(t *testing.T) {
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(42))
	order := p.Participants()[:3]
	sol, err := steadystate.Solve(context.Background(), p, steadystate.AllreduceSpec(order...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "695/571", "tiers allreduce TP")
	if got := sol.Period().String(); got != "571" {
		t.Errorf("period = %s, want 571", got)
	}
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	sched, err := sol.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("merged schedule invalid: %v", err)
	}
}

// TestAllreduceTwoRanks: pinned degenerate case — on a symmetric
// unit-cost pair the reduce-scatter halves (one reduce per direction) and
// the allgather rides the opposite directions, landing at TP = 1/2.
func TestAllreduceTwoRanks(t *testing.T) {
	p := steadystate.NewPlatform()
	a := p.AddNode("a", steadystate.R(1, 1))
	b := p.AddNode("b", steadystate.R(1, 1))
	p.AddLink(a, b, steadystate.R(1, 1))

	sol, err := steadystate.Solve(context.Background(), p, steadystate.AllreduceSpec(a, b))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ratEq(t, sol.Throughput(), "1/2", "2-rank allreduce TP")
	if err := sol.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	members := sol.(steadystate.Concurrent).Members()
	if len(members) != 3 {
		t.Fatalf("got %d members, want 2 reduces + 1 allgather", len(members))
	}
}

// TestBroadcastCompositeMember: a broadcast superposes with other
// collectives through CompositeSpec, sharing port capacity — and a
// single-member broadcast composite agrees with the standalone solve.
func TestBroadcastCompositeMember(t *testing.T) {
	ctx := context.Background()
	p, order, _ := steadystate.PaperFig6()
	bspec := steadystate.BroadcastSpec(order[0], order[1], order[2])

	single, err := steadystate.Solve(ctx, p, steadystate.CompositeSpec([]steadystate.Spec{bspec}, nil))
	if err != nil {
		t.Fatalf("single-member composite Solve: %v", err)
	}
	plain, err := steadystate.Solve(ctx, p, bspec)
	if err != nil {
		t.Fatalf("plain Solve: %v", err)
	}
	if single.Throughput().Cmp(plain.Throughput()) != 0 {
		t.Errorf("composite TP = %s, want plain broadcast %s",
			single.Throughput().RatString(), plain.Throughput().RatString())
	}
	members := single.(steadystate.Concurrent).Members()
	if len(members) != 1 || members[0].Kind() != steadystate.KindBroadcast {
		t.Fatalf("members = %v, want one broadcast", members)
	}
	if err := single.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}

	// Superposed with a reverse scatter the common rate drops but the
	// shared-capacity solution must stay verifiable and schedulable.
	mixed, err := steadystate.Solve(ctx, p, steadystate.CompositeSpec([]steadystate.Spec{
		bspec,
		steadystate.ScatterSpec(order[2], order[0], order[1]),
	}, nil))
	if err != nil {
		t.Fatalf("mixed composite Solve: %v", err)
	}
	if err := mixed.Verify(); err != nil {
		t.Errorf("mixed Verify: %v", err)
	}
	sched, err := mixed.Schedule()
	if err != nil {
		t.Fatalf("mixed Schedule: %v", err)
	}
	if err := sched.Verify(); err != nil {
		t.Errorf("mixed schedule invalid: %v", err)
	}
}

// TestNewKindSpecJSONRoundTrip: broadcast and allreduce specs (and
// scenarios embedding them) survive JSON round trips and solve after.
func TestNewKindSpecJSONRoundTrip(t *testing.T) {
	p, order, _ := steadystate.PaperFig6()
	for _, spec := range []steadystate.Spec{
		steadystate.BroadcastSpec(order[0], order[1], order[2]),
		steadystate.AllreduceSpec(order...),
	} {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal %s: %v", spec.Kind, err)
		}
		var back steadystate.Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", spec.Kind, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Errorf("%s spec round trip changed:\n%+v\nvs\n%+v", spec.Kind, back, spec)
		}
		sc := &steadystate.Scenario{Platform: p, Spec: spec}
		data, err = json.Marshal(sc)
		if err != nil {
			t.Fatalf("scenario marshal %s: %v", spec.Kind, err)
		}
		var scBack steadystate.Scenario
		if err := json.Unmarshal(data, &scBack); err != nil {
			t.Fatalf("scenario unmarshal %s: %v", spec.Kind, err)
		}
		if _, err := scBack.Solve(context.Background()); err != nil {
			t.Errorf("round-tripped %s scenario solve: %v", spec.Kind, err)
		}
	}
}

// TestNewKindErrorPaths: malformed broadcast/allreduce specs and
// unsupported options fail loudly.
func TestNewKindErrorPaths(t *testing.T) {
	ctx := context.Background()
	p, order, _ := steadystate.PaperFig6()

	if _, err := steadystate.Solve(ctx, p, steadystate.BroadcastSpec(order[0])); err == nil {
		t.Error("broadcast with no targets should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.BroadcastSpec(order[0], order[0])); err == nil {
		t.Error("broadcast to its own source should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.BroadcastSpec(order[0], order[1], order[1])); err == nil {
		t.Error("duplicate broadcast target should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.BroadcastSpec(order[0], order[1]),
		steadystate.WithMessageSize(steadystate.R(2, 1))); err == nil {
		t.Error("broadcast should reject WithMessageSize")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.AllreduceSpec(order[0])); err == nil {
		t.Error("single-participant allreduce should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.AllreduceSpec(order...),
		steadystate.WithFixedPeriod(big.NewInt(10))); err == nil {
		t.Error("WithFixedPeriod on allreduce should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.AllreduceSpec(order...),
		steadystate.WithBlockSize(steadystate.R(2, 1))); err == nil {
		t.Error("WithBlockSize on allreduce should fail")
	}
	if _, err := steadystate.Solve(ctx, p, steadystate.AllreduceSpec(order...),
		steadystate.WithMessageSize(steadystate.R(2, 1))); err == nil {
		t.Error("WithMessageSize on allreduce should fail (allgather segments are unit-size)")
	}
	nested := steadystate.CompositeSpec([]steadystate.Spec{steadystate.AllreduceSpec(order...)}, nil)
	if _, err := steadystate.Solve(ctx, p, nested); err == nil {
		t.Error("allreduce as composite member should fail (it is itself a composite)")
	}
	sol, err := steadystate.Solve(ctx, p, steadystate.AllreduceSpec(order...))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	m, err := sol.SimModel()
	if err != nil {
		t.Fatalf("allreduce SimModel: %v", err)
	}
	res, err := steadystate.Simulate(m, 40)
	if err != nil {
		t.Fatalf("allreduce Simulate: %v", err)
	}
	members := sol.(steadystate.Concurrent).Members()
	k := new(big.Int).Mul(big.NewInt(40), m.Period)
	for i := range members {
		delivered := res.MinDeliveredPrefix(steadystate.SimMemberPrefix(i))
		if delivered.Sign() <= 0 {
			t.Errorf("allreduce member %d delivered nothing", i)
		}
		bound := new(big.Rat).Mul(members[i].Throughput(), new(big.Rat).SetInt(k))
		if new(big.Rat).SetInt(delivered).Cmp(bound) > 0 {
			t.Errorf("allreduce member %d delivered %s, above bound %s", i, delivered, bound.RatString())
		}
	}
	bsol, err := steadystate.Solve(ctx, p, steadystate.BroadcastSpec(order[0], order[1]))
	if err != nil {
		t.Fatalf("broadcast Solve: %v", err)
	}
	bm, err := bsol.SimModel()
	if err != nil {
		t.Fatalf("broadcast SimModel: %v", err)
	}
	bres, err := steadystate.Simulate(bm, 40)
	if err != nil {
		t.Fatalf("broadcast Simulate: %v", err)
	}
	bk := new(big.Int).Mul(big.NewInt(40), bm.Period)
	bbound := new(big.Rat).Mul(bsol.Throughput(), new(big.Rat).SetInt(bk))
	if bres.MinDelivered().Sign() <= 0 {
		t.Error("broadcast simulation delivered nothing")
	}
	if new(big.Rat).SetInt(bres.MinDelivered()).Cmp(bbound) > 0 {
		t.Errorf("broadcast delivered %s, above bound %s", bres.MinDelivered(), bbound.RatString())
	}
}
