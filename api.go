// api.go defines the unified collective API: every collective of the
// paper (scatter, gossip, reduce, gather, prefix) is described by a Spec,
// solved through the single context-aware entry point Solve (or a
// reusable Solver session), and returned as a Solution that uniformly
// exposes the throughput, the periodic schedule, the simulation model and
// a serializable report.
package steadystate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"repro/internal/composite"
	"repro/internal/gossip"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/prefix"
	"repro/internal/rat"
	"repro/internal/reduce"
	"repro/internal/scatter"
)

// Kind names a collective operation of the steady-state framework.
type Kind string

// The collective kinds solvable through Solve.
const (
	// KindScatter: one source sends one distinct message per target per
	// operation (paper Section 3).
	KindScatter Kind = "scatter"
	// KindBroadcast: one source sends the same message to every target per
	// operation (the paper's companion work) — the scatter LP with one
	// commodity replicated to all targets, charged to the one-port model
	// through shared per-edge carry rates so a copy forwarded once serves
	// every target routed through that edge.
	KindBroadcast Kind = "broadcast"
	// KindGossip: personalized all-to-all — every source sends a distinct
	// message to every target per operation (Section 3.5).
	KindGossip Kind = "gossip"
	// KindReduce: participants hold v_i; v_0 ⊕ … ⊕ v_N reaches the target
	// (Section 4).
	KindReduce Kind = "reduce"
	// KindGather: a reduce whose operator is concatenation — partial
	// results grow with the ranges they cover and merges are free
	// (Section 4's non-commutative instantiation).
	KindGather Kind = "gather"
	// KindPrefix: every rank i receives the prefix v[0,i] (Section 6
	// extension).
	KindPrefix Kind = "prefix"
	// KindReduceScatter: each participant i of Order ends with segment i
	// reduced over all ranks — solved as the composite of N concurrent
	// reduces (segment i targeted at Order[i]) sharing every node's port
	// and compute capacity.
	KindReduceScatter Kind = "reducescatter"
	// KindAllreduce: every participant of Order ends with the full
	// reduction v_0 ⊕ … ⊕ v_N — solved as the composite of a
	// reduce-scatter phase (N concurrent reduces, segment i targeted at
	// Order[i]) and an allgather phase (a gossip redistributing each
	// participant's reduced segment to every other rank), all sharing the
	// platform's port and compute capacity at a common rate.
	KindAllreduce Kind = "allreduce"
	// KindComposite: several member collectives superposed on one
	// platform, maximizing the common (weighted) throughput under shared
	// one-port and compute constraints.
	KindComposite Kind = "composite"
)

// Spec describes one collective instance on a platform: the kind plus the
// participating nodes in the roles that kind requires. Fields not listed
// for a kind are ignored:
//
//	KindScatter:       Source, Targets
//	KindBroadcast:     Source, Targets
//	KindGossip:        Sources, Targets
//	KindReduce:        Order (Order[i] holds v_i), Target (must be in Order)
//	KindGather:        Order, Target (must be in Order)
//	KindPrefix:        Order
//	KindReduceScatter: Order (rank i keeps segment i)
//	KindAllreduce:     Order (every rank receives the full reduction)
//	KindComposite:     Members (base kinds only), Weights (nil: all 1)
//
// Specs serialize to JSON with node IDs; IDs are stable across Platform
// JSON round trips (nodes serialize in insertion order), so a Spec and
// its Platform can travel together in a Scenario file.
type Spec struct {
	Kind    Kind
	Source  NodeID
	Sources []NodeID
	Targets []NodeID
	Order   []NodeID
	Target  NodeID
	// Members are the member collectives of a composite; Weights scale
	// each member's delivered rate relative to the common base throughput
	// (nil means weight 1 for every member).
	Members []Spec
	Weights []Rat
}

// ScatterSpec returns the spec of a scatter from source to targets.
func ScatterSpec(source NodeID, targets ...NodeID) Spec {
	return Spec{Kind: KindScatter, Source: source, Targets: append([]NodeID(nil), targets...)}
}

// BroadcastSpec returns the spec of a broadcast from source to targets:
// every target receives a copy of every message. With a single target the
// problem degenerates to a scatter-to-one (there is nothing to replicate),
// and the throughputs coincide.
func BroadcastSpec(source NodeID, targets ...NodeID) Spec {
	return Spec{Kind: KindBroadcast, Source: source, Targets: append([]NodeID(nil), targets...)}
}

// GossipSpec returns the spec of a personalized all-to-all from sources
// to targets.
func GossipSpec(sources, targets []NodeID) Spec {
	return Spec{
		Kind:    KindGossip,
		Sources: append([]NodeID(nil), sources...),
		Targets: append([]NodeID(nil), targets...),
	}
}

// ReduceSpec returns the spec of a reduce over order (order[i] holds v_i)
// delivering to target.
func ReduceSpec(order []NodeID, target NodeID) Spec {
	return Spec{Kind: KindReduce, Order: append([]NodeID(nil), order...), Target: target}
}

// GatherSpec returns the spec of a gather over order delivering to
// target; set the per-participant block size with WithBlockSize.
func GatherSpec(order []NodeID, target NodeID) Spec {
	return Spec{Kind: KindGather, Order: append([]NodeID(nil), order...), Target: target}
}

// PrefixSpec returns the spec of a parallel prefix over order.
func PrefixSpec(order ...NodeID) Spec {
	return Spec{Kind: KindPrefix, Order: append([]NodeID(nil), order...)}
}

// ReduceScatterSpec returns the spec of a reduce-scatter over order: each
// participant order[i] ends with segment i reduced over all ranks. It
// solves as the composite of len(order) concurrent reduces, one per
// segment, with equal weights — the common throughput is the rate at
// which whole reduce-scatter operations complete.
func ReduceScatterSpec(order ...NodeID) Spec {
	return Spec{Kind: KindReduceScatter, Order: append([]NodeID(nil), order...)}
}

// AllreduceSpec returns the spec of an allreduce over order: every
// participant ends with v_0 ⊕ … ⊕ v_N. It solves as the composite of a
// reduce-scatter phase (one reduce per segment, segment i delivered to
// order[i]) and an allgather phase (a gossip over the participants
// redistributing each reduced segment to every other rank), with equal
// weights — the common throughput is the rate at which whole allreduce
// operations complete.
func AllreduceSpec(order ...NodeID) Spec {
	return Spec{Kind: KindAllreduce, Order: append([]NodeID(nil), order...)}
}

// CompositeSpec returns the spec of a weighted superposition of member
// collectives on one platform: member i is constrained to deliver
// weights[i]·TP operations per time unit and the common base throughput
// TP is maximized. A nil weights gives every member weight 1 (the max-min
// fair common rate). Members must be base kinds (no nested composites).
func CompositeSpec(members []Spec, weights []Rat) Spec {
	ws := make([]Rat, 0, len(weights))
	for _, w := range weights {
		if w == nil {
			// Preserve the nil so validate reports it as a non-positive
			// weight instead of panicking here.
			ws = append(ws, nil)
			continue
		}
		ws = append(ws, rat.Copy(w))
	}
	if len(ws) == 0 {
		ws = nil
	}
	return Spec{
		Kind:    KindComposite,
		Members: append([]Spec(nil), members...),
		Weights: ws,
	}
}

// jsonSpec is the serialized form: only the fields the kind uses are
// emitted, scalar node IDs travel as pointers so id 0 survives, and
// composite weights travel as exact rational strings.
type jsonSpec struct {
	Kind    Kind     `json:"kind"`
	Source  *NodeID  `json:"source,omitempty"`
	Sources []NodeID `json:"sources,omitempty"`
	Targets []NodeID `json:"targets,omitempty"`
	Order   []NodeID `json:"order,omitempty"`
	Target  *NodeID  `json:"target,omitempty"`
	Members []Spec   `json:"members,omitempty"`
	Weights []string `json:"weights,omitempty"`
}

// MarshalJSON serializes the spec, emitting only the fields its kind
// uses.
func (s Spec) MarshalJSON() ([]byte, error) {
	js := jsonSpec{Kind: s.Kind}
	switch s.Kind {
	case KindScatter, KindBroadcast:
		src := s.Source
		js.Source = &src
		js.Targets = s.Targets
	case KindGossip:
		js.Sources = s.Sources
		js.Targets = s.Targets
	case KindReduce, KindGather:
		tgt := s.Target
		js.Order = s.Order
		js.Target = &tgt
	case KindPrefix, KindReduceScatter, KindAllreduce:
		js.Order = s.Order
	case KindComposite:
		js.Members = s.Members
		for _, w := range s.Weights {
			js.Weights = append(js.Weights, w.RatString())
		}
	default:
		return nil, fmt.Errorf("steadystate: cannot marshal spec of unknown kind %q", s.Kind)
	}
	return json.Marshal(js)
}

// UnmarshalJSON deserializes a spec produced by MarshalJSON.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var js jsonSpec
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	*s = Spec{Kind: js.Kind, Sources: js.Sources, Targets: js.Targets, Order: js.Order, Members: js.Members}
	if js.Source != nil {
		s.Source = *js.Source
	}
	if js.Target != nil {
		s.Target = *js.Target
	}
	for _, w := range js.Weights {
		r, err := rat.Parse(w)
		if err != nil {
			return fmt.Errorf("steadystate: spec weight %q: %w", w, err)
		}
		s.Weights = append(s.Weights, r)
	}
	return nil
}

// CanonicalKey returns the spec's canonical serialized form: its compact
// JSON, which emits only the fields the kind uses, in a fixed order. Two
// specs with the same canonical key describe the same collective on any
// platform with the same content hash, so (Platform.ContentHash,
// Spec.CanonicalKey) identifies a solve — the report-cache key of the
// serving layer. Specs of unknown kind have no canonical form and return
// an error.
func (s Spec) CanonicalKey() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// validate checks that every node the spec references exists on the
// platform and that the kind-specific role constraints hold. Deeper
// semantic validation (reachability, duplicates, routers) is delegated to
// the per-kind problem constructors.
func (s Spec) validate(p *Platform) error {
	check := func(role string, ids ...NodeID) error {
		for _, id := range ids {
			if int(id) < 0 || int(id) >= p.NumNodes() {
				return fmt.Errorf("steadystate: %s spec: %s references unknown node id %d (platform has %d nodes)",
					s.Kind, role, int(id), p.NumNodes())
			}
		}
		return nil
	}
	switch s.Kind {
	case KindScatter, KindBroadcast:
		if err := check("source", s.Source); err != nil {
			return err
		}
		return check("targets", s.Targets...)
	case KindGossip:
		if err := check("sources", s.Sources...); err != nil {
			return err
		}
		return check("targets", s.Targets...)
	case KindReduce, KindGather:
		if err := check("order", s.Order...); err != nil {
			return err
		}
		if err := check("target", s.Target); err != nil {
			return err
		}
		for _, id := range s.Order {
			if id == s.Target {
				return nil
			}
		}
		return fmt.Errorf("steadystate: %s spec: target %s is not in the participant order",
			s.Kind, p.Node(s.Target).Name)
	case KindPrefix:
		return check("order", s.Order...)
	case KindReduceScatter, KindAllreduce:
		if len(s.Order) < 2 {
			return fmt.Errorf("steadystate: %s spec: need at least two participants", s.Kind)
		}
		return check("order", s.Order...)
	case KindComposite:
		if len(s.Members) == 0 {
			return fmt.Errorf("steadystate: composite spec has no members")
		}
		if s.Weights != nil && len(s.Weights) != len(s.Members) {
			return fmt.Errorf("steadystate: composite spec has %d weights for %d members",
				len(s.Weights), len(s.Members))
		}
		for i, w := range s.Weights {
			if w == nil || w.Sign() <= 0 {
				return fmt.Errorf("steadystate: composite member %d has non-positive weight", i)
			}
		}
		for i, mem := range s.Members {
			switch mem.Kind {
			case KindComposite, KindReduceScatter, KindAllreduce:
				return fmt.Errorf("steadystate: composite member %d: %s members cannot nest", i, mem.Kind)
			}
			if err := mem.validate(p); err != nil {
				return fmt.Errorf("steadystate: composite member %d: %w", i, err)
			}
		}
		return nil
	}
	return fmt.Errorf("steadystate: unknown collective kind %q", s.Kind)
}

// SolveOption customizes a Solve call.
type SolveOption func(*solveOptions)

type solveOptions struct {
	messageSize Rat
	taskTime    func(NodeID, ReduceTask) Rat
	blockSize   Rat
	fixedPeriod *big.Int
	denseLP     bool
	trace       bool
}

// WithMessageSize sets a uniform partial-result size for reduce and
// prefix solves (the paper's Figure 9 experiment uses size 10). Task
// times derived from node speeds scale with it.
func WithMessageSize(size Rat) SolveOption {
	return func(o *solveOptions) { o.messageSize = rat.Copy(size) }
}

// WithTaskTime overrides w(P_i, T), the time for a node to run one merge
// task, for reduce, gather and prefix solves.
func WithTaskTime(f func(NodeID, ReduceTask) Rat) SolveOption {
	return func(o *solveOptions) { o.taskTime = f }
}

// WithBlockSize sets the per-participant block size of a gather (partial
// results have size (m−k+1)·blockSize). Defaults to 1.
func WithBlockSize(size Rat) SolveOption {
	return func(o *solveOptions) { o.blockSize = rat.Copy(size) }
}

// WithFixedPeriod truncates the reduce/gather tree family to the given
// period (Section 4.6): Schedule returns the fixed-period schedule and
// Report includes the approximation's throughput and loss.
func WithFixedPeriod(period *big.Int) SolveOption {
	return func(o *solveOptions) { o.fixedPeriod = new(big.Int).Set(period) }
}

// WithTrace records a span-structured trace of the solve — model
// assembly, reachability indexing, simplex phases with pivot-level
// counters, and extraction — and attaches it as Report().Trace. The
// trace's structure and attributes are deterministic (exact counters and
// rational strings); wall-clock measurements are segregated into each
// span's timing block, so traces compare byte-for-byte after
// Trace.WithoutTiming, exactly like SweepReport. Tracing is valid for
// every kind. Without this option the solver runs allocation-free
// through the pivot loop — the instrumentation costs one nil check per
// pivot.
func WithTrace() SolveOption {
	return func(o *solveOptions) { o.trace = true }
}

// WithDenseLP solves on the dense simplex tableau instead of the sparse
// default. The two implementations execute the same pivot sequence and
// return bit-identical solutions — dense differs only in per-pivot cost
// (it multiplies every column, zeros included). It is valid for every
// kind and exists as an escape hatch and as the baseline of the
// dense-vs-sparse ablation benchmarks.
func WithDenseLP() SolveOption {
	return func(o *solveOptions) { o.denseLP = true }
}

// optionsFor materializes the options and rejects combinations the kind
// does not support, so misuse fails loudly instead of being ignored.
func optionsFor(kind Kind, opts []SolveOption) (*solveOptions, error) {
	o := &solveOptions{}
	for _, opt := range opts {
		opt(o)
	}
	switch kind {
	case KindScatter, KindBroadcast, KindGossip:
		if o.messageSize != nil || o.taskTime != nil || o.blockSize != nil || o.fixedPeriod != nil {
			return nil, fmt.Errorf("steadystate: %s solves take no options (message sizes are fixed by edge costs)", kind)
		}
	case KindReduce:
		if o.blockSize != nil {
			return nil, fmt.Errorf("steadystate: WithBlockSize applies only to %s specs", KindGather)
		}
	case KindGather:
		if o.messageSize != nil {
			return nil, fmt.Errorf("steadystate: use WithBlockSize (not WithMessageSize) for %s specs", KindGather)
		}
	case KindPrefix:
		if o.blockSize != nil {
			return nil, fmt.Errorf("steadystate: WithBlockSize applies only to %s specs", KindGather)
		}
		if o.fixedPeriod != nil {
			return nil, fmt.Errorf("steadystate: WithFixedPeriod is not supported for %s specs", KindPrefix)
		}
	case KindReduceScatter, KindAllreduce:
		if o.blockSize != nil {
			return nil, fmt.Errorf("steadystate: WithBlockSize applies only to %s specs", KindGather)
		}
		if o.fixedPeriod != nil {
			return nil, fmt.Errorf("steadystate: WithFixedPeriod is not supported for %s specs (the merged schedule has no single tree family)", kind)
		}
		if kind == KindAllreduce && o.messageSize != nil {
			// The allgather member redistributes the reduced segments at
			// unit size (gossip flows have no size parameter yet); scaling
			// only the reduce phase would under-charge the allgather and
			// report an unachievable throughput.
			return nil, fmt.Errorf("steadystate: WithMessageSize is not supported for %s specs (the allgather phase moves unit-size segments)", KindAllreduce)
		}
	case KindComposite:
		// Size and task-time options pass through to the members they
		// apply to; the fixed-period truncation has no composite analogue.
		if o.fixedPeriod != nil {
			return nil, fmt.Errorf("steadystate: WithFixedPeriod is not supported for %s specs", KindComposite)
		}
	}
	return o, nil
}

// ErrUnsupported marks a Solution capability a collective kind does not
// provide (for example prefix solutions have no schedule construction in
// the paper). Test with errors.Is.
var ErrUnsupported = errors.New("steadystate: operation not supported for this collective kind")

// ErrUnsolvable marks solve failures that are the problem's fault rather
// than the solver's: an invalid spec, bad options, or an impossible
// instance (unreachable target, duplicate participants, …). Callers that
// map solver errors onto fault classes — the serving layer turns these
// into 400s and everything unrecognized into 500s — test with errors.Is.
var ErrUnsolvable = errors.New("steadystate: scenario cannot be solved")

// unsolvableError tags an error with ErrUnsolvable without changing its
// message or breaking the rest of its chain.
type unsolvableError struct{ err error }

func (e *unsolvableError) Error() string        { return e.err.Error() }
func (e *unsolvableError) Unwrap() error        { return e.err }
func (e *unsolvableError) Is(target error) bool { return target == ErrUnsolvable }

// unsolvable wraps validation and construction failures on their way out
// of a solve.
func unsolvable(err error) error {
	if err == nil {
		return nil
	}
	return &unsolvableError{err}
}

// Solution is a solved collective, whatever its kind. All arithmetic is
// exact: Throughput and Period are bit-identical to the legacy per-kind
// entry points. Capabilities a kind lacks return ErrUnsupported.
type Solution interface {
	// Kind returns the collective kind that was solved.
	Kind() Kind
	// Spec returns the spec the solution answers.
	Spec() Spec
	// Throughput returns TP, the optimal operations started per time unit.
	Throughput() Rat
	// Period returns the integer schedule period (LCM of denominators).
	Period() *big.Int
	// Schedule builds the concrete periodic schedule achieving TP.
	Schedule() (*Schedule, error)
	// SimModel builds the dynamic model of the buffered periodic protocol.
	SimModel() (*SimModel, error)
	// Report returns the serializable summary of the solution.
	Report() (*Report, error)
	// Verify re-checks the paper's constraints independently of the solver.
	Verify() error
	// Unwrap returns the kind-specific solution (*ScatterSolution,
	// *BroadcastSolution, *GossipSolution, *ReduceSolution,
	// *PrefixSolution, or *CompositeSolution for the composite kinds).
	Unwrap() any
	// String renders the solution as the paper's figures do.
	String() string
}

// Certified is implemented by reduce and gather solutions: Certificate
// exposes the integer application and the weighted reduction-tree family
// proving the throughput (Theorem 1).
type Certified interface {
	Certificate() (*ReduceApplication, []*ReductionTree, error)
}

// Solve computes the optimal steady-state throughput of the collective
// described by spec on the platform, together with the machinery to turn
// it into schedules, simulations and reports. It is the single entry
// point for all five collective kinds; ctx cancels the exact simplex loop
// between pivots.
//
// One-shot convenience for NewSolver(p).Solve(ctx, spec, opts...): use a
// Solver session when solving repeatedly on one platform.
func Solve(ctx context.Context, p *Platform, spec Spec, opts ...SolveOption) (Solution, error) {
	return NewSolver(p).Solve(ctx, spec, opts...)
}

// Solver is a solving session bound to one platform. It is safe for
// concurrent use and reuses per-platform state across solves — the
// reachability index behind problem validation and LP variable pruning is
// computed once per source node and shared — so sweeps that solve many
// specs on the same platform are faster than repeated cold Solve calls.
// The platform must not be mutated while the session is in use.
type Solver struct {
	p     *Platform
	bases *BasisCache
}

// BasisCache is an LRU cache of certified simplex bases — the shared
// warm-start state behind Solver.UseBasisCache (alias of the LP-level
// cache so serving layers can pool one cache across sessions). It is
// safe for concurrent use; a nil cache is inert.
type BasisCache = lp.BasisCache

// NewBasisCache returns a basis cache retaining up to capacity entries
// with least-recently-used eviction. A capacity <= 0 yields a cache
// that stores nothing (useful for disabling warm starts via config).
func NewBasisCache(capacity int) *BasisCache { return lp.NewBasisCache(capacity) }

// NewSolver returns a solving session for the platform.
func NewSolver(p *Platform) *Solver {
	if p == nil {
		panic("steadystate: NewSolver on nil platform")
	}
	return &Solver{p: p}
}

// UseBasisCache attaches a warm-start basis cache to the session and
// returns the session. Every subsequent Solve consults the cache for a
// certified basis of the same problem shape — keyed by node count and
// the spec's canonical key, deliberately coarser than the platform
// content hash so a perturbed platform (cost jitter, speed scaling)
// still hits — and stores its own certified basis back. The LP-level
// structural fingerprint guards safety: a basis from a structurally
// different model (an edge deleted, a row's sense flipped) is rejected
// and the solve runs cold, so warm starts never change any reported
// rational — only the pivot path taken to reach it. Report().WarmStart
// and lp_warm_pivots_saved record the outcome per solve. The cache may
// be shared across sessions (it is safe for concurrent use); attach it
// before the first Solve.
func (s *Solver) UseBasisCache(c *BasisCache) *Solver {
	s.bases = c
	return s
}

// Platform returns the platform the session solves on.
func (s *Solver) Platform() *Platform { return s.p }

// Solve solves one spec on the session's platform. See the package-level
// Solve for semantics. The wall-clock duration of the call is recorded on
// the solution and surfaced as Report().SolveMS, so sweep drivers can
// aggregate solver cost without timing every call themselves.
func (s *Solver) Solve(ctx context.Context, spec Spec, opts ...SolveOption) (Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	// Peek the trace flag before option validation so the tracer can root
	// the span tree around the whole solve, including model assembly.
	var peek solveOptions
	for _, opt := range opts {
		opt(&peek)
	}
	var tracer *obs.Tracer
	if peek.trace {
		tracer = obs.NewTracer("solve")
		tracer.Root().SetAttr("kind", string(spec.Kind))
		ctx = obs.WithTracer(ctx, tracer)
	}
	// With a basis cache attached, offer the cached basis for this problem
	// shape to the LP (the solve validates it against the structural
	// fingerprint and falls back to cold when it does not fit) and collect
	// the freshly certified basis on the way out.
	var ws *lp.WarmStart
	var basisKey string
	if s.bases != nil {
		if specKey, err := spec.CanonicalKey(); err == nil {
			basisKey = fmt.Sprintf("%d|%s", s.p.NumNodes(), specKey)
			ws = &lp.WarmStart{Basis: s.bases.Get(basisKey)}
			ctx = lp.WithWarmBasis(ctx, ws)
		}
	}
	sol, err := s.solve(ctx, spec, opts...)
	if err != nil {
		return nil, err
	}
	if t, ok := sol.(durationRecorder); ok {
		t.setSolveDuration(time.Since(start))
	}
	if ws != nil {
		s.bases.Put(basisKey, ws.Final)
		if w, ok := sol.(warmRecorder); ok {
			w.setWarm(ws.Used, ws.RejectReason, ws.PivotsSaved)
		}
	}
	if tracer != nil {
		if t, ok := sol.(traceRecorder); ok {
			t.setTrace(tracer.Finish())
		}
	}
	return sol, nil
}

func (s *Solver) solve(ctx context.Context, spec Spec, opts ...SolveOption) (Solution, error) {
	o, err := optionsFor(spec.Kind, opts)
	if err != nil {
		return nil, unsolvable(err)
	}
	if err := spec.validate(s.p); err != nil {
		return nil, unsolvable(err)
	}
	if o.denseLP {
		// The tableau selection rides the context all the way into the
		// simplex, so one decoration covers plain and composite solves.
		ctx = lp.WithTableau(ctx, lp.TableauDense)
	}

	switch spec.Kind {
	case KindScatter, KindBroadcast, KindGossip, KindReduce, KindGather, KindPrefix:
		mem, err := s.newMember(spec, rat.One(), o)
		if err != nil {
			return nil, unsolvable(err)
		}
		switch {
		case mem.Scatter != nil:
			sol, err := mem.Scatter.SolveCtx(ctx)
			if err != nil {
				return nil, err
			}
			return &scatterSolution{spec: spec, sol: sol}, nil
		case mem.Broadcast != nil:
			sol, err := mem.Broadcast.SolveCtx(ctx)
			if err != nil {
				return nil, err
			}
			return &broadcastSolution{spec: spec, sol: sol}, nil
		case mem.Gossip != nil:
			sol, err := mem.Gossip.SolveCtx(ctx)
			if err != nil {
				return nil, err
			}
			return &gossipSolution{spec: spec, sol: sol}, nil
		case mem.Reduce != nil:
			sol, err := mem.Reduce.SolveCtx(ctx)
			if err != nil {
				return nil, err
			}
			return &reduceSolution{spec: spec, sol: sol, fixed: o.fixedPeriod}, nil
		default:
			sol, err := mem.Prefix.SolveCtx(ctx)
			if err != nil {
				return nil, err
			}
			return &prefixSolution{spec: spec, sol: sol}, nil
		}

	case KindReduceScatter:
		// Reduce-scatter is the composite of N concurrent reduces: the
		// reduce of segment i, over the full order, delivered to Order[i],
		// all with equal weight.
		members := make([]Spec, len(spec.Order))
		for i, id := range spec.Order {
			members[i] = ReduceSpec(spec.Order, id)
		}
		return s.solveComposite(ctx, spec, members, nil, o)

	case KindAllreduce:
		// Allreduce is Träff's decomposition: a reduce-scatter phase (N
		// concurrent reduces, segment i delivered to Order[i]) composed
		// with an allgather phase (a gossip over the participants
		// redistributing each reduced segment), every member at weight 1 —
		// one whole allreduce completes per unit of the common rate.
		members := make([]Spec, 0, len(spec.Order)+1)
		for _, id := range spec.Order {
			members = append(members, ReduceSpec(spec.Order, id))
		}
		members = append(members, GossipSpec(spec.Order, spec.Order))
		return s.solveComposite(ctx, spec, members, nil, o)

	case KindComposite:
		return s.solveComposite(ctx, spec, spec.Members, spec.Weights, o)
	}
	return nil, unsolvable(fmt.Errorf("steadystate: unknown collective kind %q", spec.Kind))
}

// newMember builds the kind-specific problem of a base spec, with the
// options applied, wrapped as a weighted composite member. It is the
// single problem-construction path for both plain and composite solves.
func (s *Solver) newMember(spec Spec, weight Rat, o *solveOptions) (composite.Member, error) {
	switch spec.Kind {
	case KindScatter:
		pr, err := scatter.NewProblem(s.p, spec.Source, spec.Targets)
		if err != nil {
			return composite.Member{}, err
		}
		return composite.ScatterMember(pr, weight), nil

	case KindBroadcast:
		pr, err := scatter.NewBroadcastProblem(s.p, spec.Source, spec.Targets)
		if err != nil {
			return composite.Member{}, err
		}
		return composite.BroadcastMember(pr, weight), nil

	case KindGossip:
		pr, err := gossip.NewProblem(s.p, spec.Sources, spec.Targets)
		if err != nil {
			return composite.Member{}, err
		}
		return composite.GossipMember(pr, weight), nil

	case KindReduce, KindGather:
		var pr *ReduceProblem
		var err error
		if spec.Kind == KindGather {
			block := o.blockSize
			if block == nil {
				block = rat.One()
			}
			pr, err = reduce.NewGatherProblem(s.p, spec.Order, spec.Target, block)
		} else {
			pr, err = reduce.NewProblem(s.p, spec.Order, spec.Target)
			if err == nil && o.messageSize != nil {
				size := rat.Copy(o.messageSize)
				pr.SizeOf = func(ReduceRange) Rat { return size }
			}
		}
		if err != nil {
			return composite.Member{}, err
		}
		if o.taskTime != nil {
			pr.TaskTime = o.taskTime
		}
		return composite.ReduceMember(pr, weight), nil

	case KindPrefix:
		pr, err := prefix.NewProblem(s.p, spec.Order)
		if err != nil {
			return composite.Member{}, err
		}
		if o.messageSize != nil {
			size := rat.Copy(o.messageSize)
			pr.SizeOf = func(ReduceRange) Rat { return size }
		}
		if o.taskTime != nil {
			pr.TaskTime = o.taskTime
		}
		return composite.PrefixMember(pr, weight), nil
	}
	return composite.Member{}, fmt.Errorf("steadystate: %q cannot be a composite member", spec.Kind)
}

// solveComposite assembles the member problems into one shared-capacity LP
// and solves it.
func (s *Solver) solveComposite(ctx context.Context, spec Spec, memberSpecs []Spec, weights []Rat, o *solveOptions) (Solution, error) {
	members := make([]composite.Member, len(memberSpecs))
	for i, ms := range memberSpecs {
		w := rat.One()
		if weights != nil {
			w = weights[i]
		}
		mem, err := s.newMember(ms, w, o)
		if err != nil {
			return nil, unsolvable(fmt.Errorf("steadystate: %s member %d: %w", spec.Kind, i, err))
		}
		members[i] = mem
	}
	cp, err := composite.NewProblem(s.p, members)
	if err != nil {
		return nil, unsolvable(err)
	}
	sol, err := cp.SolveCtx(ctx)
	if err != nil {
		return nil, err
	}
	return &compositeSolution{spec: spec, memberSpecs: append([]Spec(nil), memberSpecs...), sol: sol}, nil
}

// ---------------------------------------------------------------------------
// Kind-specific Solution implementations

// timed stores the wall-clock duration of the Solve call that produced a
// solution; every kind-specific solution embeds it so Report can carry
// the solver cost alongside the LP counters.
type timed struct{ dur time.Duration }

// durationRecorder is satisfied by all kind-specific solutions via the
// embedded timed.
type durationRecorder interface{ setSolveDuration(time.Duration) }

func (t *timed) setSolveDuration(d time.Duration) { t.dur = d }
func (t *timed) solveMS() float64                 { return float64(t.dur) / float64(time.Millisecond) }

// traced stores the span-structured trace of the Solve call that produced
// a solution (nil unless the call used WithTrace); every kind-specific
// solution embeds it so Report can carry the trace.
type traced struct{ trace *obs.Trace }

// traceRecorder is satisfied by all kind-specific solutions via the
// embedded traced.
type traceRecorder interface{ setTrace(*obs.Trace) }

func (t *traced) setTrace(tr *obs.Trace) { t.trace = tr }

// warmed stores the warm-start outcome of the Solve call that produced a
// solution (all zero unless the session had a basis cache attached);
// every kind-specific solution embeds it so Report can carry
// warm_start/warm_reject/lp_warm_pivots_saved.
type warmed struct {
	warmUsed   bool
	warmReject string
	warmSaved  int
}

// warmRecorder is satisfied by all kind-specific solutions via the
// embedded warmed.
type warmRecorder interface {
	setWarm(used bool, reject string, saved int)
}

func (w *warmed) setWarm(used bool, reject string, saved int) {
	w.warmUsed, w.warmReject, w.warmSaved = used, reject, saved
}

// stamp copies the warm-start outcome onto a report.
func (w *warmed) stamp(r *Report) {
	r.WarmStart = w.warmUsed
	r.WarmReject = w.warmReject
	r.WarmPivotsSaved = w.warmSaved
}

type scatterSolution struct {
	timed
	traced
	warmed
	spec Spec
	sol  *ScatterSolution
}

func (s *scatterSolution) Kind() Kind                   { return KindScatter }
func (s *scatterSolution) Spec() Spec                   { return s.spec }
func (s *scatterSolution) Throughput() Rat              { return s.sol.Throughput() }
func (s *scatterSolution) Period() *big.Int             { return s.sol.Period() }
func (s *scatterSolution) Schedule() (*Schedule, error) { return ScatterSchedule(s.sol) }
func (s *scatterSolution) SimModel() (*SimModel, error) { return ScatterSimModel(s.sol), nil }
func (s *scatterSolution) Verify() error                { return s.sol.Verify() }
func (s *scatterSolution) Unwrap() any                  { return s.sol }
func (s *scatterSolution) String() string               { return s.sol.String() }
func (s *scatterSolution) Report() (*Report, error) {
	r := newReport(KindScatter, s.sol.Throughput(), s.sol.Period(), s.sol.Stats)
	r.SolveMS = s.solveMS()
	r.Trace = s.trace
	s.warmed.stamp(r)
	return r, nil
}

type broadcastSolution struct {
	timed
	traced
	warmed
	spec Spec
	sol  *BroadcastSolution
}

func (s *broadcastSolution) Kind() Kind       { return KindBroadcast }
func (s *broadcastSolution) Spec() Spec       { return s.spec }
func (s *broadcastSolution) Throughput() Rat  { return s.sol.Throughput() }
func (s *broadcastSolution) Period() *big.Int { return s.sol.Period() }

// Schedule decomposes the carry stream — the messages physically moved,
// one shared copy per edge — into one-port-safe matching slots.
func (s *broadcastSolution) Schedule() (*Schedule, error) { return BroadcastSchedule(s.sol) }

// SimModel replays the carry stream with per-target replication: each
// target's bundled virtual flow is a commodity of its own, delivered
// against TP per target.
func (s *broadcastSolution) SimModel() (*SimModel, error) { return BroadcastSimModel(s.sol), nil }
func (s *broadcastSolution) Verify() error                { return s.sol.Verify() }
func (s *broadcastSolution) Unwrap() any                  { return s.sol }
func (s *broadcastSolution) String() string               { return s.sol.String() }
func (s *broadcastSolution) Report() (*Report, error) {
	r := newReport(KindBroadcast, s.sol.Throughput(), s.sol.Period(), s.sol.Stats)
	r.SolveMS = s.solveMS()
	r.Trace = s.trace
	s.warmed.stamp(r)
	return r, nil
}

type gossipSolution struct {
	timed
	traced
	warmed
	spec Spec
	sol  *GossipSolution
}

func (s *gossipSolution) Kind() Kind                   { return KindGossip }
func (s *gossipSolution) Spec() Spec                   { return s.spec }
func (s *gossipSolution) Throughput() Rat              { return s.sol.Throughput() }
func (s *gossipSolution) Period() *big.Int             { return s.sol.Period() }
func (s *gossipSolution) Schedule() (*Schedule, error) { return GossipSchedule(s.sol) }
func (s *gossipSolution) SimModel() (*SimModel, error) { return GossipSimModel(s.sol), nil }
func (s *gossipSolution) Verify() error                { return s.sol.Verify() }
func (s *gossipSolution) Unwrap() any                  { return s.sol }
func (s *gossipSolution) String() string               { return s.sol.String() }
func (s *gossipSolution) Report() (*Report, error) {
	r := newReport(KindGossip, s.sol.Throughput(), s.sol.Period(), s.sol.Stats)
	r.SolveMS = s.solveMS()
	r.Trace = s.trace
	s.warmed.stamp(r)
	return r, nil
}

type reduceSolution struct {
	timed
	traced
	warmed
	spec  Spec
	sol   *ReduceSolution
	fixed *big.Int

	once  sync.Once
	app   *ReduceApplication
	trees []*ReductionTree
	plan  *FixedPeriodPlan
	err   error
}

// certify lazily integerizes the solution and extracts its tree family
// (plus the fixed-period plan when requested), caching the result.
func (s *reduceSolution) certify() {
	s.once.Do(func() {
		s.app = s.sol.Integerize()
		s.trees, s.err = s.app.ExtractTrees()
		if s.err == nil && s.fixed != nil {
			s.plan, s.err = ApproximateFixedPeriod(s.app, s.trees, s.fixed)
		}
	})
}

func (s *reduceSolution) Kind() Kind       { return s.spec.Kind }
func (s *reduceSolution) Spec() Spec       { return s.spec }
func (s *reduceSolution) Throughput() Rat  { return s.sol.Throughput() }
func (s *reduceSolution) Period() *big.Int { return s.sol.Period() }
func (s *reduceSolution) Verify() error    { return s.sol.Verify() }
func (s *reduceSolution) Unwrap() any      { return s.sol }
func (s *reduceSolution) String() string   { return s.sol.String() }

// Certificate returns the integer application and the reduction-tree
// family certifying the throughput (Theorem 1).
func (s *reduceSolution) Certificate() (*ReduceApplication, []*ReductionTree, error) {
	s.certify()
	if s.err != nil {
		return nil, nil, s.err
	}
	return s.app, s.trees, nil
}

func (s *reduceSolution) Schedule() (*Schedule, error) {
	s.certify()
	if s.err != nil {
		return nil, s.err
	}
	if s.plan != nil {
		return ReduceSchedule(s.app, s.plan.Trees, s.plan.Period)
	}
	return ReduceSchedule(s.app, s.trees, nil)
}

func (s *reduceSolution) SimModel() (*SimModel, error) {
	s.certify()
	if s.err != nil {
		return nil, s.err
	}
	return ReduceSimModel(s.app), nil
}

func (s *reduceSolution) Report() (*Report, error) {
	s.certify()
	if s.err != nil {
		return nil, s.err
	}
	r := newReport(s.spec.Kind, s.sol.Throughput(), s.sol.Period(), s.sol.Stats)
	r.SolveMS = s.solveMS()
	r.Trace = s.trace
	s.warmed.stamp(r)
	r.Trees = len(s.trees)
	if s.plan != nil {
		r.FixedPeriod = s.plan.Period.String()
		r.FixedThroughput = s.plan.Throughput.RatString()
		r.FixedLoss = s.plan.Loss.RatString()
	}
	return r, nil
}

type prefixSolution struct {
	timed
	traced
	warmed
	spec Spec
	sol  *PrefixSolution
}

func (s *prefixSolution) Kind() Kind       { return KindPrefix }
func (s *prefixSolution) Spec() Spec       { return s.spec }
func (s *prefixSolution) Throughput() Rat  { return s.sol.Throughput() }
func (s *prefixSolution) Period() *big.Int { return s.sol.Period() }
func (s *prefixSolution) Verify() error    { return s.sol.Verify() }
func (s *prefixSolution) Unwrap() any      { return s.sol }
func (s *prefixSolution) String() string   { return s.sol.String() }
func (s *prefixSolution) Schedule() (*Schedule, error) {
	return nil, fmt.Errorf("prefix schedule construction: %w", ErrUnsupported)
}
func (s *prefixSolution) SimModel() (*SimModel, error) { return PrefixSimModel(s.sol), nil }
func (s *prefixSolution) Report() (*Report, error) {
	r := newReport(KindPrefix, s.sol.Throughput(), s.sol.Period(), s.sol.Stats)
	r.SolveMS = s.solveMS()
	r.Trace = s.trace
	s.warmed.stamp(r)
	return r, nil
}

// Concurrent is implemented by composite and reduce-scatter solutions:
// Members exposes each member collective as a full per-kind Solution
// (reduce members additionally implement Certified), solved jointly under
// the shared capacity constraints.
type Concurrent interface {
	Members() []Solution
}

type compositeSolution struct {
	timed
	traced
	warmed
	spec        Spec
	memberSpecs []Spec
	sol         *composite.Solution
}

func (s *compositeSolution) Kind() Kind       { return s.spec.Kind }
func (s *compositeSolution) Spec() Spec       { return s.spec }
func (s *compositeSolution) Throughput() Rat  { return s.sol.Throughput() }
func (s *compositeSolution) Period() *big.Int { return s.sol.Period() }
func (s *compositeSolution) Verify() error    { return s.sol.Verify() }
func (s *compositeSolution) Unwrap() any      { return s.sol }
func (s *compositeSolution) String() string   { return s.sol.String() }

// Schedule returns the merged periodic schedule: the union of every
// member's transfers over the LCM of the member periods, decomposed into
// one-port-safe matching slots (member i's transfers are labeled
// "op<i>:…").
func (s *compositeSolution) Schedule() (*Schedule, error) { return s.sol.Schedule() }

// SimModel returns the merged multi-member model: every member's model,
// scaled to the composite period and namespaced "op<i>:" (matching the
// merged schedule's transfer labels), superposed into one replay. Read a
// member's deliveries with Result.MinDeliveredPrefix(SimMemberPrefix(i));
// per-member submodels remain available via Members()[i].SimModel().
func (s *compositeSolution) SimModel() (*SimModel, error) {
	members := s.Members()
	models := make([]*SimModel, len(members))
	labels := make([]string, len(members))
	for i, mem := range members {
		m, err := mem.SimModel()
		if err != nil {
			return nil, fmt.Errorf("%s member %d simulation model: %w", s.spec.Kind, i, err)
		}
		models[i] = m
		labels[i] = SimMemberPrefix(i)
	}
	return MergeSimModels(s.sol.Problem.Platform, s.sol.Period(), models, labels)
}

// Members returns one Solution per member, in spec order. Member solutions
// answer their own member spec: their Throughput is Weight·TP, and their
// Schedule/Report/Certificate machinery works member-locally.
func (s *compositeSolution) Members() []Solution {
	out := make([]Solution, len(s.sol.Members))
	for i, ms := range s.sol.Members {
		spec := s.memberSpecs[i]
		switch {
		case ms.Scatter != nil:
			out[i] = &scatterSolution{spec: spec, sol: ms.Scatter}
		case ms.Broadcast != nil:
			out[i] = &broadcastSolution{spec: spec, sol: ms.Broadcast}
		case ms.Gossip != nil:
			out[i] = &gossipSolution{spec: spec, sol: ms.Gossip}
		case ms.Reduce != nil:
			out[i] = &reduceSolution{spec: spec, sol: ms.Reduce}
		case ms.Prefix != nil:
			out[i] = &prefixSolution{spec: spec, sol: ms.Prefix}
		}
	}
	return out
}

// Report summarizes the composite — common throughput, merged period, the
// shared LP size — plus one member report per member (throughput Weight·TP
// and the member's own period; tree counts are available through
// Members()[i].(Certified) without the extraction cost here).
func (s *compositeSolution) Report() (*Report, error) {
	r := newReport(s.spec.Kind, s.sol.TP, s.sol.Period(), s.sol.Stats)
	r.SolveMS = s.solveMS()
	r.Trace = s.trace
	s.warmed.stamp(r)
	for i, ms := range s.sol.Members {
		mr := newReport(s.memberSpecs[i].Kind, ms.Throughput, ms.Period(), s.sol.Stats)
		mr.Weight = ms.Weight.RatString()
		r.Members = append(r.Members, mr)
	}
	return r, nil
}
