// Ablation benchmarks: quantify the design choices DESIGN.md calls out by
// knocking each one out and measuring the throughput that remains.
//
//	go test -bench=Ablation -benchmem
package steadystate_test

import (
	"context"
	"math/big"
	"testing"
	"time"

	steadystate "repro"
	"repro/internal/baseline"
)

// BenchmarkAblationSingleTree measures what the best single extracted
// reduction tree achieves versus the full weighted family on the Fig-9
// platform: the gap is the value of mixing trees (the paper's key insight
// for Series of Reduces).
func BenchmarkAblationSingleTree(b *testing.B) {
	pr := fig9Problem(b)
	sol, err := pr.Solve()
	if err != nil {
		b.Fatal(err)
	}
	app := sol.Integerize()
	trees, err := app.ExtractTrees()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var best steadystate.Rat
		for _, tree := range trees {
			tp, err := baseline.TreeThroughput(pr, tree)
			if err != nil {
				b.Fatal(err)
			}
			if best == nil || tp.Cmp(best) > 0 {
				best = tp
			}
		}
		if best.Cmp(sol.Throughput()) > 0 {
			b.Fatalf("single tree %s beats the family %s — impossible",
				best.RatString(), sol.Throughput().RatString())
		}
		ratio, _ := new(big.Rat).Quo(sol.Throughput(), best).Float64()
		b.ReportMetric(ratio, "family/single")
	}
}

// BenchmarkAblationComputeAtTarget disables the paper's interleaving of
// computation with communication by forcing all merges onto the target
// (gather-then-reduce). On Fig 6 this halves the throughput.
func BenchmarkAblationComputeAtTarget(b *testing.B) {
	p, order, target := steadystate.PaperFig6()
	free, err := steadystate.SolveReduce(p, order, target)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := steadystate.NewReduceProblem(p, order, target)
		if err != nil {
			b.Fatal(err)
		}
		pr.ComputeAt = []steadystate.NodeID{target}
		sol, err := pr.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Throughput().Cmp(free.Throughput()) > 0 {
			b.Fatal("restriction increased throughput")
		}
		ratio, _ := new(big.Rat).Quo(free.Throughput(), sol.Throughput()).Float64()
		b.ReportMetric(ratio, "free/restricted")
	}
}

// BenchmarkAblationCycleCancellation measures the tree-extraction pipeline
// with the full solution (extraction requires the cycle-cancelled transfer
// support; this bench tracks its cost on the largest instance).
func BenchmarkAblationCycleCancellation(b *testing.B) {
	pr := fig9Problem(b)
	sol, err := pr.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := sol.Integerize()
		if _, err := app.ExtractTrees(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGatherVsReduce contrasts a gather (concatenation sizes,
// free merges) with a same-shape reduce (unit sizes, real merges) on a
// chain: gathers cannot shrink data en route, so relaying buys nothing,
// while reduces keep link load constant.
func BenchmarkAblationGatherVsReduce(b *testing.B) {
	p := steadystate.Chain(4, steadystate.R(1, 1), steadystate.R(1, 1))
	var order []steadystate.NodeID
	for _, n := range p.Nodes() {
		order = append(order, n.ID)
	}
	for i := 0; i < b.N; i++ {
		g, err := steadystate.NewGatherProblem(p, order, order[0], steadystate.R(1, 1))
		if err != nil {
			b.Fatal(err)
		}
		gSol, err := g.Solve()
		if err != nil {
			b.Fatal(err)
		}
		rSol, err := steadystate.SolveReduce(p, order, order[0])
		if err != nil {
			b.Fatal(err)
		}
		if rSol.Throughput().Cmp(gSol.Throughput()) < 0 {
			b.Fatal("reduce should not be slower than gather on a chain")
		}
		ratio, _ := new(big.Rat).Quo(rSol.Throughput(), gSol.Throughput()).Float64()
		b.ReportMetric(ratio, "reduce/gather")
	}
}

// tiers42CompositeSpec is the Tiers-42 composite scenario of the sparse-LP
// ablation: the reduce-scatter over the first three participants of the
// seed-42 Tiers platform (golden TP 695/283), solved as three concurrent
// reduces through the shared-capacity composite LP — the workload class
// whose variable count multiplies by the member count and therefore the
// one the sparse tableau is for.
func tiers42CompositeSpec(tb testing.TB) (*steadystate.Platform, steadystate.Spec) {
	tb.Helper()
	p := steadystate.Tiers(steadystate.DefaultTiersConfig(42))
	parts := p.Participants()
	return p, steadystate.ReduceScatterSpec(parts[0], parts[1], parts[2])
}

// BenchmarkAblationDenseLP knocks out the sparse tableau: it solves the
// Tiers-42 composite scenario on the sparse default and on the dense
// escape hatch (WithDenseLP) each iteration and reports the wall-clock
// ratio. Both solves run the identical pivot sequence — the benchmark
// fails if the exact throughputs diverge — so the ratio isolates the
// per-pivot cost of multiplying zeros. Expected ≥ 1.5× (≈ 2.4× measured
// on the reference container).
func BenchmarkAblationDenseLP(b *testing.B) {
	p, spec := tiers42CompositeSpec(b)
	ctx := context.Background()
	var sparseTot, denseTot time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sparse, err := steadystate.Solve(ctx, p, spec)
		if err != nil {
			b.Fatal(err)
		}
		sparseTot += time.Since(start)
		start = time.Now()
		dense, err := steadystate.Solve(ctx, p, spec, steadystate.WithDenseLP())
		if err != nil {
			b.Fatal(err)
		}
		denseTot += time.Since(start)
		if sparse.Throughput().Cmp(dense.Throughput()) != 0 {
			b.Fatalf("tableaus disagree: sparse %s, dense %s",
				sparse.Throughput().RatString(), dense.Throughput().RatString())
		}
	}
	// One aggregate ratio over all iterations (ReportMetric overwrites per
	// call, so reporting inside the loop would keep only the last sample).
	b.ReportMetric(float64(denseTot)/float64(sparseTot), "dense/sparse")
}

// BenchmarkAblationSparseLPSolve and BenchmarkAblationDenseLPSolve time
// the two tableaus separately on the same scenario, so the CI artifact
// trend carries absolute solve times per representation.
func BenchmarkAblationSparseLPSolve(b *testing.B) {
	p, spec := tiers42CompositeSpec(b)
	for i := 0; i < b.N; i++ {
		if _, err := steadystate.Solve(context.Background(), p, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDenseLPSolve(b *testing.B) {
	p, spec := tiers42CompositeSpec(b)
	for i := 0; i < b.N; i++ {
		if _, err := steadystate.Solve(context.Background(), p, spec, steadystate.WithDenseLP()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUnsplitCost measures the period blow-up of forbidding
// split messages (Figure 4(b) vs 4(a)).
func BenchmarkAblationUnsplitCost(b *testing.B) {
	p, src, targets := steadystate.PaperFig2()
	sol, err := steadystate.SolveScatter(p, src, targets)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := steadystate.ScatterSchedule(sol)
		if err != nil {
			b.Fatal(err)
		}
		un := sched.Unsplit()
		blowup, _ := new(big.Rat).Quo(un.Period, sched.Period).Float64()
		b.ReportMetric(blowup, "period-blowup")
	}
}
