// Trace tests: WithTrace must produce a deterministic span tree per
// solve — byte-identical modulo timing, reconciling exactly with the
// Report's LP counters — and concurrent traced solves on one session
// must produce disjoint traces (run under -race in CI).
package steadystate_test

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	steadystate "repro"
)

// traceReport solves the spec with tracing on and returns the report.
func traceReport(t *testing.T, s *steadystate.Solver, spec steadystate.Spec, extra ...steadystate.SolveOption) *steadystate.Report {
	t.Helper()
	opts := append([]steadystate.SolveOption{steadystate.WithTrace()}, extra...)
	sol, err := s.Solve(context.Background(), spec, opts...)
	if err != nil {
		t.Fatalf("traced solve: %v", err)
	}
	rep, err := sol.Report()
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if rep.Trace == nil {
		t.Fatal("WithTrace must attach Report.Trace")
	}
	return rep
}

// spanInt reads an integer span attribute (in-memory attributes are ints;
// only a JSON round trip turns them into float64).
func spanInt(t *testing.T, s *steadystate.Span, key string) int {
	t.Helper()
	v, ok := s.Attrs[key].(int)
	if !ok {
		t.Fatalf("span %s attr %q = %v (%T), want int", s.Name, key, s.Attrs[key], s.Attrs[key])
	}
	return v
}

// findSpan returns the unique span with the given name, or nil.
func findSpan(root *steadystate.Span, name string) *steadystate.Span {
	var found *steadystate.Span
	root.Walk(func(s *steadystate.Span) {
		if s.Name == name {
			found = s
		}
	})
	return found
}

// checkTraceReconciles asserts the invariant the CI bench-smoke job pins
// end to end: the phase spans' pivot attributes equal the report's LP
// counters exactly.
func checkTraceReconciles(t *testing.T, rep *steadystate.Report) {
	t.Helper()
	root := rep.Trace.Root
	if root.Name != "solve" {
		t.Fatalf("root span %q, want solve", root.Name)
	}
	if kind, _ := root.Attrs["kind"].(string); kind != string(rep.Kind) {
		t.Errorf("root kind attr %q != report kind %q", kind, rep.Kind)
	}
	p1, p2 := findSpan(root, "lp.phase1"), findSpan(root, "lp.phase2")
	if p2 == nil {
		t.Fatal("no lp.phase2 span")
	}
	p1Pivots := 0
	if p1 != nil {
		p1Pivots = spanInt(t, p1, "pivots")
	}
	if p1Pivots != rep.LPPhase1Pivots {
		t.Errorf("phase1 span pivots %d != lp_phase1_pivots %d", p1Pivots, rep.LPPhase1Pivots)
	}
	if total := p1Pivots + spanInt(t, p2, "pivots"); total != rep.LPPivots {
		t.Errorf("phase span pivots %d != lp_pivots %d", total, rep.LPPivots)
	}
}

// TestTraceGoldenStructure pins the trace contract on the tiers42
// fixture: every span carries a timing block, WithoutTiming strips them
// all, repeated solves serialize byte-identically modulo timing, the
// dense tableau replays the same trace, and the pivot attributes
// reconcile with the report counters — for a scatter (pure flow LP) and
// a reduce (tree extraction included).
func TestTraceGoldenStructure(t *testing.T) {
	p := loadFixture(t, "tiers42.json")
	parts := p.Participants()
	solver := steadystate.NewSolver(p)
	specs := map[string]steadystate.Spec{
		"scatter": steadystate.ScatterSpec(parts[0], parts[1:3]...),
		"reduce":  steadystate.ReduceSpec(parts[:4], parts[0]),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			rep := traceReport(t, solver, spec)
			checkTraceReconciles(t, rep)

			// Wall clock lives only in timing blocks: present on every span,
			// gone after the golden projection.
			rep.Trace.Root.Walk(func(s *steadystate.Span) {
				if s.Timing == nil {
					t.Errorf("span %s has no timing block", s.Name)
				}
			})
			bare := rep.Trace.WithoutTiming()
			bare.Root.Walk(func(s *steadystate.Span) {
				if s.Timing != nil {
					t.Errorf("WithoutTiming left timing on span %s", s.Name)
				}
			})

			// The structural projection is a pure function of the scenario:
			// byte-identical across repeat solves and across tableau
			// implementations.
			golden, err := json.Marshal(bare)
			if err != nil {
				t.Fatal(err)
			}
			again, err := json.Marshal(traceReport(t, solver, spec).Trace.WithoutTiming())
			if err != nil {
				t.Fatal(err)
			}
			if string(again) != string(golden) {
				t.Errorf("repeat solve changed the trace:\n%s\n%s", golden, again)
			}
			dense, err := json.Marshal(traceReport(t, solver, spec, steadystate.WithDenseLP()).Trace.WithoutTiming())
			if err != nil {
				t.Fatal(err)
			}
			if string(dense) != string(golden) {
				t.Errorf("dense tableau changed the trace:\n%s\n%s", golden, dense)
			}
		})
	}
}

// TestUntracedSolveHasNoTrace pins the default: no WithTrace, no trace.
func TestUntracedSolveHasNoTrace(t *testing.T) {
	p := loadFixture(t, "tiers42.json")
	parts := p.Participants()
	sol, err := steadystate.Solve(context.Background(), p, steadystate.ScatterSpec(parts[0], parts[1:3]...))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sol.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Fatal("untraced solve must not attach a trace")
	}
}

// TestConcurrentTracesDisjoint proves concurrent traced solves on one
// Solver session produce disjoint traces: each goroutine's trace is its
// own tree, reconciling with its own report — no span ever leaks into
// another solve's trace. The -race runner in CI makes the memory claim.
func TestConcurrentTracesDisjoint(t *testing.T) {
	p := loadFixture(t, "tiers42.json")
	parts := p.Participants()
	solver := steadystate.NewSolver(p)
	specs := []steadystate.Spec{
		steadystate.ScatterSpec(parts[0], parts[1:3]...),
		steadystate.ReduceSpec(parts[:4], parts[0]),
		steadystate.PrefixSpec(parts[:3]...),
		steadystate.BroadcastSpec(parts[1], parts[2:4]...),
	}
	const rounds = 4
	reports := make([]*steadystate.Report, len(specs)*rounds)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, err := solver.Solve(context.Background(), specs[i%len(specs)], steadystate.WithTrace())
			if err == nil {
				reports[i], err = sol.Report()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("solve %d: %w", i, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	seen := make(map[*steadystate.Span]int)
	for i, rep := range reports {
		checkTraceReconciles(t, rep)
		rep.Trace.Root.Walk(func(s *steadystate.Span) {
			if prev, dup := seen[s]; dup {
				t.Fatalf("span %s shared between solves %d and %d", s.Name, prev, i)
			}
			seen[s] = i
		})
	}
}
